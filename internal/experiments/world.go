// Package experiments reproduces the paper's evaluation: Figure 4
// (throughput of CUBIC native vs CUBIC NSM), Table 1 (memory-copy
// latency), the §4.2 microbenchmarks (nqe copy cost, GuestLib↔
// ServiceLib channel throughput), Figure 5 (a Windows VM using a BBR
// NSM over a WAN), and the §5 ablations (notification modes, priority
// queues, NSM forms, multiplexing, sync vs async).
//
// Each experiment returns typed rows; cmd/nkbench prints them in the
// paper's format and bench_test.go exposes them as testing.B
// benchmarks. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/hypervisor"
	"netkernel/internal/netsim"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
)

// World is a two-host testbed: the paper's pair of Xeon servers joined
// back to back (§4.1), with a configurable wire.
type World struct {
	Loop   *sim.Loop
	H1, H2 *hypervisor.Host
	L12    *netsim.Link // host1 → host2
	L21    *netsim.Link
}

// WorldConfig shapes the testbed.
type WorldConfig struct {
	Link netsim.LinkConfig
	// PerPacketCost is the per-core processing cost per packet; it is
	// the knob that sets the single-flow ceiling in Figure 4.
	PerPacketCost time.Duration
	// Cores per host (default 8).
	Cores int
	// Seed drives the deterministic loss/ISN randomness.
	Seed uint64
	// MinRTO for TCP (default 200 ms; datacenter scenarios lower it).
	MinRTO time.Duration
	// Mutate, when set, adjusts each host config before construction.
	Mutate func(cfg *hypervisor.HostConfig)
}

// NewWorld builds the testbed.
func NewWorld(cfg WorldConfig) *World {
	loop := sim.NewLoop()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	mk := func(name string, id uint8) *hypervisor.Host {
		hc := hypervisor.HostConfig{
			Name:            name,
			Clock:           loop,
			RNG:             sim.NewRNG(cfg.Seed + uint64(id)),
			HostID:          id,
			Cores:           cfg.Cores,
			PerPacketCost:   cfg.PerPacketCost,
			RoundRobinCores: true,
			MinRTO:          cfg.MinRTO,
			MSL:             100 * time.Millisecond,
		}
		if cfg.Mutate != nil {
			cfg.Mutate(&hc)
		}
		return hypervisor.NewHost(hc)
	}
	w := &World{Loop: loop, H1: mk("host1", 1), H2: mk("host2", 2)}
	rng := sim.NewRNG(cfg.Seed + 1000)
	w.L12, w.L21 = netsim.Duplex(loop, rng, cfg.Link, w.H1.NIC, w.H2.NIC)
	w.H1.NIC.AttachWire(w.L12)
	w.H2.NIC.AttachWire(w.L21)
	return w
}

// IPs used by the experiment VMs.
var (
	SenderIP   = ipv4.Addr{10, 0, 1, 1}
	ReceiverIP = ipv4.Addr{10, 0, 2, 1}
)

// Flow is one measured bulk-transfer flow: a self-pumping sender and a
// counting receiver. It abstracts over the legacy (in-guest stack) and
// NetKernel (GuestLib) APIs so both Figure 4 bars use identical
// traffic logic.
type Flow struct {
	// Received is the receiver-side cumulative payload byte count.
	Received func() uint64
	// Established reports whether the connection completed its
	// handshake.
	Established func() bool
}

// chunk is the application write granularity.
const appChunk = 64 << 10

// pumpBuf is shared scratch for senders; contents are irrelevant.
var pumpBuf = make([]byte, appChunk)

// StartFlow opens a bulk transfer from sender to receiver on the given
// port, picking the legacy or NetKernel API per VM mode — so mixed
// scenarios (a NetKernel server talking to a plain client, as in
// Figure 5) work naturally.
func StartFlow(w *World, sender, receiver *hypervisor.VM, port uint16) *Flow {
	f := &Flow{}
	var received uint64
	var established bool
	f.Received = func() uint64 { return received }
	f.Established = func() bool { return established }

	// Receiver side: accept and drain, counting payload bytes.
	if receiver.Mode == hypervisor.ModeLegacy {
		l, err := receiver.Legacy.Listen(port, 16, stack.SocketOptions{})
		if err != nil {
			panic(err)
		}
		buf := make([]byte, 256<<10)
		l.OnAcceptable = func() {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			drain := func() {
				for {
					n, _ := conn.Read(buf)
					if n == 0 {
						return
					}
					received += uint64(n)
				}
			}
			conn.SetCallbacks(drain, nil, nil)
			drain()
		}
	} else {
		rg := receiver.Guest
		lfd := rg.Socket(guestlib.Callbacks{})
		buf := make([]byte, 256<<10)
		rg.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
			fd, ok := rg.Accept(lfd)
			if !ok {
				return
			}
			drain := func() {
				for {
					n, _ := rg.Recv(fd, buf)
					if n == 0 {
						return
					}
					received += uint64(n)
				}
			}
			rg.SetCallbacks(fd, guestlib.Callbacks{OnReadable: drain})
			drain()
		}})
		if err := rg.Listen(lfd, port, 16); err != nil {
			panic(err)
		}
	}

	// Sender side: connect, then keep the pipe full.
	if sender.Mode == hypervisor.ModeLegacy {
		var conn *tcp.Conn
		pump := func() {
			for conn.Write(pumpBuf) > 0 {
			}
		}
		var err error
		conn, err = sender.Legacy.Dial(tcp.AddrPort{Addr: receiver.IP, Port: port}, stack.SocketOptions{
			OnEstablished: func(err error) {
				if err == nil {
					established = true
					pump()
				}
			},
			OnWritable: pump,
		})
		if err != nil {
			panic(err)
		}
	} else {
		sg := sender.Guest
		var fd int32
		pump := func() {
			for sg.Send(fd, pumpBuf) > 0 {
			}
		}
		fd = sg.Socket(guestlib.Callbacks{
			OnEstablished: func(err error) {
				if err == nil {
					established = true
					pump()
				}
			},
			OnWritable: pump,
		})
		if err := sg.Connect(fd, receiver.IP, port); err != nil {
			panic(err)
		}
	}
	return f
}

// StartLegacyFlow opens a bulk transfer between two legacy VMs.
func StartLegacyFlow(w *World, sender, receiver *hypervisor.VM, port uint16) *Flow {
	return StartFlow(w, sender, receiver, port)
}

// StartNetKernelFlow opens a bulk transfer between two NetKernel VMs.
func StartNetKernelFlow(w *World, sender, receiver *hypervisor.VM, port uint16) *Flow {
	return StartFlow(w, sender, receiver, port)
}

// MeasureGoodput runs warmup, then measures the flows' aggregate
// receive rate over the window and returns bits per second.
func MeasureGoodput(w *World, flows []*Flow, warmup, window time.Duration) float64 {
	w.Loop.RunFor(warmup)
	start := make([]uint64, len(flows))
	for i, f := range flows {
		start[i] = f.Received()
	}
	w.Loop.RunFor(window)
	var total uint64
	for i, f := range flows {
		total += f.Received() - start[i]
	}
	return float64(total) * 8 / window.Seconds()
}
