package experiments

// Copy-budget experiment (DESIGN.md §8): a bidirectional streaming
// echo between two NetKernel VMs, with every layer's memcpy counters
// sampled so each payload byte's trips through memory can be audited.
// The budget after the huge-page span datapath is 1 copy per byte on
// send (application buffer → huge-page chunk; the chunk then rides
// refcounted through ServiceLib and the TCP send buffer untouched) and
// 2 on receive (wire payload → chunk in ServiceLib's receive sink,
// chunk → application buffer in GuestLib). The CI gate allows 2.5 to
// leave room for the copy fallbacks (out-of-order arrivals buffered in
// rcvBuf, oversized sends) without letting a regression to the old
// copy-at-every-layer path slip through.

import (
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/hypervisor"
	"netkernel/internal/netsim"
	"netkernel/internal/telemetry"
)

// CopyBudgetConfig shapes the echo measurement.
type CopyBudgetConfig struct {
	// Warmup precedes the measured window, after the NSM boot wait
	// (default 200 ms — enough for slow start to clear).
	Warmup time.Duration
	// Window is the measured period (default 200 ms).
	Window time.Duration
	// EchoChunk is the application write granularity (default 16 KiB).
	EchoChunk int
	// Seed drives deterministic randomness (default 4242).
	Seed uint64
	// TraceSampleEvery arms per-nqe span tracing on both hosts (every
	// Nth operation; 0, the default, runs untraced).
	TraceSampleEvery int
}

func (c *CopyBudgetConfig) fillDefaults() {
	if c.Warmup <= 0 {
		c.Warmup = 200 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 200 * time.Millisecond
	}
	if c.EchoChunk <= 0 {
		c.EchoChunk = 16 << 10
	}
	if c.Seed == 0 {
		c.Seed = 4242
	}
}

// CopyBudgetResult reports the echo run's copy accounting. All byte
// counts are deltas over the measured window, summed across both VMs
// (the client sends and receives; the server receives and re-sends).
type CopyBudgetResult struct {
	// BytesEchoed is the payload the client got back — the goodput
	// numerator.
	BytesEchoed uint64
	// GoodputBps is the client's echo receive rate in bits/s.
	GoodputBps float64
	// Report holds the per-layer copied-byte deltas.
	Report hypervisor.CopyReport
	// TxCopiesPerByte / RxCopiesPerByte are the headline numbers:
	// memcpy's each payload byte suffered in each direction.
	TxCopiesPerByte float64
	RxCopiesPerByte float64
	// Snapshot is the client host's unified telemetry registry at the
	// end of the run (queue accounting, doorbells, stack counters, and
	// span-latency histograms when tracing is armed).
	Snapshot telemetry.Snapshot
	// Spans are the client host's completed pipeline spans, oldest
	// first (empty unless TraceSampleEvery > 0).
	Spans []telemetry.Span
}

// RunCopyBudget runs the echo and audits the copies.
func RunCopyBudget(cfg CopyBudgetConfig) CopyBudgetResult {
	cfg.fillDefaults()
	w := NewWorld(WorldConfig{
		Link:          netsim.Testbed40G(),
		PerPacketCost: 470 * time.Nanosecond,
		Cores:         8,
		Seed:          cfg.Seed,
		MinRTO:        10 * time.Millisecond,
		Mutate: func(hc *hypervisor.HostConfig) {
			hc.TraceSampleEvery = cfg.TraceSampleEvery
		},
	})
	spec := hypervisor.NSMSpec{Form: hypervisor.FormVM, CC: "cubic", Cores: 8}
	client, err := w.H1.CreateVM(hypervisor.VMConfig{Name: "cli", IP: SenderIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
	if err != nil {
		panic(err)
	}
	server, err := w.H2.CreateVM(hypervisor.VMConfig{Name: "srv", IP: ReceiverIP, Mode: hypervisor.ModeNetKernel, NSM: spec})
	if err != nil {
		panic(err)
	}

	// Let the NSM VMs boot before opening sockets (ops issued before
	// the module serves its queues would stall).
	w.Loop.RunFor(client.NSM.Profile.BootTime + 50*time.Millisecond)

	const port = 9090
	startEchoServer(server.Guest, port, cfg.EchoChunk)
	echoed := startEchoClient(client.Guest, server.IP, port, cfg.EchoChunk)

	w.Loop.RunFor(cfg.Warmup)
	cliBase, srvBase := client.CopyReport(), server.CopyReport()
	echoBase := echoed()
	w.Loop.RunFor(cfg.Window)
	delta := client.CopyReport().Sub(cliBase)
	srvDelta := server.CopyReport().Sub(srvBase)

	delta.PayloadTx += srvDelta.PayloadTx
	delta.PayloadRx += srvDelta.PayloadRx
	delta.GuestTxCopied += srvDelta.GuestTxCopied
	delta.GuestRxCopied += srvDelta.GuestRxCopied
	delta.ServiceTxCopied += srvDelta.ServiceTxCopied
	delta.ServiceRxCopied += srvDelta.ServiceRxCopied
	delta.TCPTxCopied += srvDelta.TCPTxCopied
	delta.TCPRxCopied += srvDelta.TCPRxCopied

	got := echoed() - echoBase
	return CopyBudgetResult{
		BytesEchoed:     got,
		GoodputBps:      float64(got) * 8 / cfg.Window.Seconds(),
		Report:          delta,
		TxCopiesPerByte: delta.TxCopiesPerByte(),
		RxCopiesPerByte: delta.RxCopiesPerByte(),
		Snapshot:        w.H1.Snapshot(),
		Spans:           w.H1.Tracer.Completed(),
	}
}

// startEchoServer accepts on port and writes every received byte back,
// holding unflushed bytes in an application-side pending buffer while
// the send buffer is full.
func startEchoServer(g *guestlib.GuestLib, port uint16, chunk int) {
	lfd := g.Socket(guestlib.Callbacks{})
	g.SetCallbacks(lfd, guestlib.Callbacks{OnAcceptable: func() {
		fd, ok := g.Accept(lfd)
		if !ok {
			return
		}
		buf := make([]byte, chunk)
		var pend []byte
		var echo func()
		flush := func() bool {
			for len(pend) > 0 {
				n := g.Send(fd, pend)
				if n == 0 {
					return false
				}
				pend = pend[n:]
			}
			return true
		}
		echo = func() {
			for {
				if !flush() {
					return
				}
				n, _ := g.Recv(fd, buf)
				if n == 0 {
					return
				}
				pend = append(pend[:0], buf[:n]...)
			}
		}
		g.SetCallbacks(fd, guestlib.Callbacks{OnReadable: echo, OnWritable: echo})
		echo()
	}})
	if err := g.Listen(lfd, port, 16); err != nil {
		panic(err)
	}
}

// startEchoClient connects, keeps the pipe full, drains the echoes,
// and returns a sampler for the cumulative echoed-byte count.
func startEchoClient(g *guestlib.GuestLib, ip [4]byte, port uint16, chunk int) func() uint64 {
	var echoed uint64
	out := make([]byte, chunk)
	in := make([]byte, chunk)
	var fd int32
	pump := func() {
		for g.Send(fd, out) > 0 {
		}
	}
	drain := func() {
		for {
			n, _ := g.Recv(fd, in)
			if n == 0 {
				return
			}
			echoed += uint64(n)
		}
	}
	fd = g.Socket(guestlib.Callbacks{
		OnEstablished: func(err error) {
			if err == nil {
				pump()
			}
		},
		OnWritable: pump,
		OnReadable: drain,
	})
	if err := g.Connect(fd, ip, port); err != nil {
		panic(err)
	}
	return func() uint64 { return echoed }
}
