package netkernel

import (
	"fmt"
	"time"

	"netkernel/internal/mgmt"
	"netkernel/internal/pricing"
)

// Management-plane surface: the §5 centralized management and pricing
// capabilities, re-exported for library users.

type (
	// PingMesh is an all-pairs ICMP prober with failure detection
	// (Pingmesh-style, §5 "Centralized management and control").
	PingMesh = mgmt.Mesh
	// MeshNode is one probe endpoint.
	MeshNode = mgmt.MeshNode
	// MeshConfig shapes the prober.
	MeshConfig = mgmt.MeshConfig
	// PathReport summarizes one probed path.
	PathReport = mgmt.PathReport
	// ThroughputSLA tracks achieved vs promised tenant throughput.
	ThroughputSLA = mgmt.ThroughputSLA

	// Meter samples a tenant's NSM resource usage.
	Meter = pricing.Meter
	// Usage is a metered consumption record.
	Usage = pricing.Usage
	// PricingModel converts Usage into money.
	PricingModel = pricing.Model
	// InvoiceLine is one model's price for one usage.
	InvoiceLine = pricing.InvoiceLine
	// MicroUSD is integer money (millionths of a dollar).
	MicroUSD = pricing.MicroUSD
)

// NewPingMesh builds a prober over the given nodes.
func NewPingMesh(cfg MeshConfig, nodes []MeshNode) *PingMesh { return mgmt.NewMesh(cfg, nodes) }

// NewThroughputSLA builds a throughput-SLA tracker; sample must return
// a cumulative byte counter.
func NewThroughputSLA(c *Cluster, name string, targetBps float64, window time.Duration, sample func() uint64) *ThroughputSLA {
	return mgmt.NewThroughputSLA(c.Clock(), name, targetBps, window, sample)
}

// NewVMThroughputSLA builds a tracker fed straight from the host
// telemetry registry: it samples the tenant's ServiceLib ingress
// counters ("vm<id>.r<n>.svc.data_in", summed across replicas) rather
// than a hand-fed closure.
func NewVMThroughputSLA(c *Cluster, h *Host, vm *VM, targetBps float64, window time.Duration) *ThroughputSLA {
	reg := h.Metrics
	id, replicas := vm.ID, len(vm.Services)
	return mgmt.NewThroughputSLA(c.Clock(), vm.Name, targetBps, window, func() uint64 {
		var total uint64
		for r := 0; r < replicas; r++ {
			total += reg.CounterValue(fmt.Sprintf("vm%d.r%d.svc.data_in", id, r))
		}
		return total
	})
}

// MeterNSM starts metering one VM's share of its NSM for billing.
func MeterNSM(c *Cluster, vm *VM, slaBps float64) *Meter {
	nsm := vm.NSM
	svc := vm.Service
	return pricing.NewMeter(c.Clock(), nsm.Form.String(), nsm.CPU.Cores(), nsm.Profile.MemoryMB, slaBps,
		func() time.Duration { return nsm.CPU.TotalBusy() },
		func() (uint64, uint64) { st := svc.Stats(); return st.DataIn, st.DataOut },
		func() int { return nsm.Stack.ConnCount() },
	)
}

// Invoice prices a usage under every supplied model.
func Invoice(u Usage, models ...PricingModel) []InvoiceLine { return pricing.Invoice(u, models...) }

// DefaultPricingModels returns the §5 pricing catalogue: per-instance,
// per-core, utilization-based, and SLA-based.
func DefaultPricingModels() []PricingModel { return pricing.DefaultModels() }
