package netkernel

import (
	"fmt"
	"time"

	"netkernel/internal/hypervisor"
	"netkernel/internal/mgmt"
	"netkernel/internal/pricing"
)

// Management-plane surface: the §5 centralized management and pricing
// capabilities, re-exported for library users.

type (
	// PingMesh is an all-pairs ICMP prober with failure detection
	// (Pingmesh-style, §5 "Centralized management and control").
	PingMesh = mgmt.Mesh
	// MeshNode is one probe endpoint.
	MeshNode = mgmt.MeshNode
	// MeshConfig shapes the prober.
	MeshConfig = mgmt.MeshConfig
	// PathReport summarizes one probed path.
	PathReport = mgmt.PathReport
	// ThroughputSLA tracks achieved vs promised tenant throughput.
	ThroughputSLA = mgmt.ThroughputSLA

	// Migration is the record of one live NSM migration.
	Migration = hypervisor.Migration
	// MigrateOptions tunes a live migration (stall model, fault
	// injection).
	MigrateOptions = hypervisor.MigrateOptions
	// RollingUpgrade migrates a host's NSMs one module at a time.
	RollingUpgrade = mgmt.RollingUpgrade
	// UpgradePlan decides, per module, whether and how to migrate it.
	UpgradePlan = mgmt.UpgradePlan

	// Meter samples a tenant's NSM resource usage.
	Meter = pricing.Meter
	// Usage is a metered consumption record.
	Usage = pricing.Usage
	// PricingModel converts Usage into money.
	PricingModel = pricing.Model
	// InvoiceLine is one model's price for one usage.
	InvoiceLine = pricing.InvoiceLine
	// MicroUSD is integer money (millionths of a dollar).
	MicroUSD = pricing.MicroUSD
	// MigrationEvent is the billable shape of one live migration.
	MigrationEvent = pricing.MigrationEvent
	// MigrationPricer prices migration events.
	MigrationPricer = pricing.MigrationPricer
)

// MigrateVM live-migrates the NSM serving vm onto a freshly booted
// module built from spec — every tenant multiplexed onto that module
// moves with it, no connection is lost, and the guest observes only a
// bounded stall. spec.CC different from the module's hot-swaps every
// migrated flow's congestion control mid-stream. done, if non-nil,
// fires when the cutover (or its abort) completes.
func MigrateVM(h *Host, vm *VM, spec NSMSpec, done func(*Migration)) (*Migration, error) {
	return h.MigrateNSM(vm.NSM, spec, MigrateOptions{}, done)
}

// NewRollingUpgrade builds a driver that migrates every NSM on h, one
// module at a time, billing each move through pricer.
func NewRollingUpgrade(h *Host, plan UpgradePlan, opts MigrateOptions, pricer MigrationPricer) *RollingUpgrade {
	return mgmt.NewRollingUpgrade(h, plan, opts, pricer)
}

// ConsolidateNSMs builds a rolling upgrade that packs every module
// billing higher than target (under rates) onto the target form.
func ConsolidateNSMs(h *Host, target NSMForm, rates pricing.PerInstance, opts MigrateOptions, pricer MigrationPricer) *RollingUpgrade {
	return mgmt.Consolidate(h, target, rates, opts, pricer)
}

// DefaultMigrationPricer returns representative migration rates.
func DefaultMigrationPricer() MigrationPricer { return pricing.DefaultMigrationPricer() }

// NewPingMesh builds a prober over the given nodes.
func NewPingMesh(cfg MeshConfig, nodes []MeshNode) *PingMesh { return mgmt.NewMesh(cfg, nodes) }

// NewThroughputSLA builds a throughput-SLA tracker; sample must return
// a cumulative byte counter.
func NewThroughputSLA(c *Cluster, name string, targetBps float64, window time.Duration, sample func() uint64) *ThroughputSLA {
	return mgmt.NewThroughputSLA(c.Clock(), name, targetBps, window, sample)
}

// NewVMThroughputSLA builds a tracker fed straight from the host
// telemetry registry: it samples the tenant's ServiceLib ingress
// counters ("vm<id>.r<n>.svc.data_in", summed across replicas) rather
// than a hand-fed closure.
func NewVMThroughputSLA(c *Cluster, h *Host, vm *VM, targetBps float64, window time.Duration) *ThroughputSLA {
	reg := h.Metrics
	id, replicas := vm.ID, len(vm.Services)
	return mgmt.NewThroughputSLA(c.Clock(), vm.Name, targetBps, window, func() uint64 {
		var total uint64
		for r := 0; r < replicas; r++ {
			total += reg.CounterValue(fmt.Sprintf("vm%d.r%d.svc.data_in", id, r))
		}
		return total
	})
}

// MeterNSM starts metering one VM's share of its NSM for billing. The
// samplers follow vm.NSM live, so metering survives a live migration:
// after a cutover they read the successor module's CPU and stack.
func MeterNSM(c *Cluster, vm *VM, slaBps float64) *Meter {
	nsm := vm.NSM
	svc := vm.Service
	return pricing.NewMeter(c.Clock(), nsm.Form.String(), nsm.CPU.Cores(), nsm.Profile.MemoryMB, slaBps,
		func() time.Duration { return vm.NSM.CPU.TotalBusy() },
		func() (uint64, uint64) { st := svc.Stats(); return st.DataIn, st.DataOut },
		func() int { return vm.NSM.Stack.ConnCount() },
	)
}

// Invoice prices a usage under every supplied model.
func Invoice(u Usage, models ...PricingModel) []InvoiceLine { return pricing.Invoice(u, models...) }

// DefaultPricingModels returns the §5 pricing catalogue: per-instance,
// per-core, utilization-based, and SLA-based.
func DefaultPricingModels() []PricingModel { return pricing.DefaultModels() }
