// Command nkctl boots a demonstration NetKernel cloud and reports on
// it like an operator console: inventory, live traffic, the pingmesh
// health matrix, per-tenant SLA compliance, and the §5 pricing models
// applied to metered usage.
//
// Usage:
//
//	nkctl [-tenants N] [-duration D]          operator demo (default)
//	nkctl [-filter PREFIX] stats              unified telemetry snapshot
//	nkctl [-sample N] trace                   per-nqe pipeline spans
//	nkctl [-cc NAME] migrate                  live NSM migration demo
package main

import (
	"flag"
	"fmt"
	"time"

	"netkernel"
	"netkernel/internal/mgmt"
	"netkernel/internal/pricing"
)

var (
	tenants  = flag.Int("tenants", 3, "tenant VMs to provision")
	duration = flag.Duration("duration", 2*time.Second, "simulated runtime")
	sample   = flag.Int("sample", 64, "trace: sample every Nth operation")
	filter   = flag.String("filter", "", "stats: comma-free metric name prefix to keep")
	migCC    = flag.String("cc", "bbr", "migrate: congestion control the successor modules run (hot-swaps live flows)")
)

func main() {
	flag.Parse()
	switch flag.Arg(0) {
	case "", "demo":
		demo()
	case "stats":
		runStats()
	case "trace":
		runTrace()
	case "migrate":
		runMigrate()
	default:
		fmt.Printf("nkctl: unknown command %q (want demo, stats, trace, or migrate)\n", flag.Arg(0))
	}
}

// cloud is a booted two-host demo world with running tenant traffic.
type cloud struct {
	c       *netkernel.Cluster
	h1, h2  *netkernel.Host
	server  *netkernel.VM
	vms     []*netkernel.VM
	meters  []*pricing.Meter
	started time.Duration
}

// buildCloud provisions the demo deployment: a server VM on host2 and
// -tenants VMs on host1, odd tenants multiplexed onto a shared NSM.
// traceEvery > 0 arms per-nqe span tracing on both hosts.
func buildCloud(traceEvery int) *cloud {
	c := netkernel.NewCluster(netkernel.ClusterConfig{
		Seed: 42, PerPacketCost: 470 * time.Nanosecond,
		Host: func(hc *netkernel.HostConfig) { hc.TraceSampleEvery = traceEvery },
	})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	c.ConnectHosts(h1, h2, netkernel.Testbed40G())

	server, err := h2.CreateVM(netkernel.VMConfig{
		Name: "server", IP: netkernel.IP("10.0.2.1"), Mode: netkernel.ModeNetKernel,
		NSM: netkernel.NSMSpec{Form: netkernel.FormModule, CC: "cubic"},
	})
	if err != nil {
		panic(err)
	}

	ccs := []string{"cubic", "bbr", "dctcp", "reno", "ctcp"}
	var vms []*netkernel.VM
	var shared *netkernel.NSM
	for i := 0; i < *tenants; i++ {
		spec := netkernel.NSMSpec{
			Form:         netkernel.FormContainer,
			CC:           ccs[i%len(ccs)],
			RateLimitBps: float64(2-i%2) * 1e9, // alternate 2 and 1 Gbit/s SLAs
		}
		if shared != nil && i%2 == 1 {
			spec.ShareWith = shared // odd tenants share the first NSM
		}
		// A dedicated NSM carries its own network identity; tenants
		// multiplexed onto a shared NSM share its address.
		ip := netkernel.Addr{10, 0, 1, byte(1 + i)}
		if spec.ShareWith != nil {
			ip = shared.Stack.Interface().IP
		}
		vm, err := h1.CreateVM(netkernel.VMConfig{
			Name: fmt.Sprintf("tenant%d", i), IP: ip,
			Mode: netkernel.ModeNetKernel, NSM: spec,
		})
		if err != nil {
			panic(err)
		}
		if shared == nil {
			shared = vm.NSM
		}
		vms = append(vms, vm)
	}
	c.Run(500 * time.Millisecond) // boots
	w := &cloud{c: c, h1: h1, h2: h2, server: server, vms: vms}
	w.meters = startTraffic(c, server, vms)
	return w
}

func demo() {
	fmt.Println("nkctl: booting a two-host NetKernel cloud")
	w := buildCloud(0)
	c, h1, h2, server, vms := w.c, w.h1, w.h2, w.server, w.vms

	fmt.Printf("\ninventory: host1 %d VMs / %d NSMs, host2 %d VMs / %d NSMs\n",
		h1.VMs(), h1.NSMs(), h2.VMs(), h2.NSMs())
	h1.EachNSM(func(n *netkernel.NSM) {
		fmt.Printf("  nsm%-3d form=%-9s cc=%-6s tenants=%d mem=%dMB isolation=%s\n",
			n.ID, n.Form, n.CC, n.Tenants(), n.Profile.MemoryMB, n.Profile.Isolation)
	})

	// Pingmesh across the provider-controlled stacks.
	mesh := mgmt.NewMesh(mgmt.MeshConfig{
		Clock: c.Clock(), Interval: 200 * time.Millisecond, Timeout: 100 * time.Millisecond,
	}, []mgmt.MeshNode{
		{Name: "host1/nsm", Stack: vms[0].NSM.Stack, IP: vms[0].IP},
		{Name: "host2/nsm", Stack: server.NSM.Stack, IP: server.IP},
	})
	mesh.Start()

	// Registry-fed SLA trackers (the registry samples each tenant's
	// ServiceLib ingress; no hand-fed closures).
	var slas []*netkernel.ThroughputSLA
	for i, vm := range vms {
		tr := netkernel.NewVMThroughputSLA(c, h1, vm, float64(2-i%2)*1e9*0.9, 100*time.Millisecond)
		tr.Start()
		slas = append(slas, tr)
	}

	c.Run(*duration)
	mesh.Stop()

	fmt.Println("\npingmesh health matrix:")
	for _, r := range mesh.Report() {
		status := "up"
		if r.Down {
			status = "DOWN"
		}
		fmt.Printf("  %-12s → %-12s %-5s probes=%d lost=%d p50=%v p99=%v\n",
			r.From, r.To, status, r.Sent, r.Lost, r.RTTp50, r.RTTp99)
	}

	fmt.Println("\nper-tenant usage and invoices:")
	models := pricing.DefaultModels()
	for i, m := range w.meters {
		u := m.Snapshot()
		fmt.Printf("  tenant%d: %.1f MB out, %v CPU busy, %d peak conns — %s\n",
			i, float64(u.BytesOut)/1e6, u.CPUBusy.Round(time.Microsecond), u.PeakConns, slas[i])
		for _, line := range pricing.Invoice(u, models...) {
			fmt.Printf("    %-14s %v\n", line.Model, line.Amount)
		}
	}
	fmt.Printf("\nsimulated %v in %s of wall time\n", c.Now(), "(instantaneous)")
}

// runStats boots the demo cloud, drives traffic, and dumps the unified
// telemetry registry of both hosts.
func runStats() {
	w := buildCloud(0)
	w.c.Run(*duration)
	for _, h := range []*netkernel.Host{w.h1, w.h2} {
		snap := h.Snapshot()
		if *filter != "" {
			snap = snap.Filter(*filter)
		}
		fmt.Printf("== %s ==\n%s", h.Name(), snap.String())
	}
}

// runTrace boots the demo cloud with sampling tracing armed and prints
// the completed per-nqe spans: each hop of an operation's journey
// through the pipeline, stamped in virtual time.
func runTrace() {
	if *sample < 1 {
		*sample = 1
	}
	w := buildCloud(*sample)
	w.c.Run(*duration)
	for _, h := range []*netkernel.Host{w.h1, w.h2} {
		spans := h.Tracer.Completed()
		fmt.Printf("== %s: %d completed spans (sampling 1 in %d) ==\n", h.Name(), len(spans), *sample)
		for _, sp := range spans {
			fmt.Println("  " + sp.Format())
		}
	}
}

// runMigrate boots the demo cloud, runs traffic, then rolling-upgrades
// every NSM on host1 onto fresh modules running -cc (a live
// congestion-control hot-swap for every in-flight connection), billing
// each move, and proves the traffic kept flowing.
func runMigrate() {
	fmt.Println("nkctl: booting a two-host NetKernel cloud")
	w := buildCloud(0)
	c, h1 := w.c, w.h1
	c.Run(*duration / 2)

	before := make([]uint64, len(w.meters))
	for i, m := range w.meters {
		before[i] = m.Snapshot().BytesOut
	}

	fmt.Printf("\nrolling upgrade: migrating %d NSMs on host1 to cc=%s\n", h1.NSMs(), *migCC)
	pricer := netkernel.DefaultMigrationPricer()
	up := netkernel.NewRollingUpgrade(h1, func(n *netkernel.NSM) (netkernel.NSMSpec, bool) {
		return netkernel.NSMSpec{Form: n.Form, CC: *migCC}, true
	}, netkernel.MigrateOptions{}, pricer)
	upgrading := true
	up.Start(func(*netkernel.RollingUpgrade) { upgrading = false })
	for upgrading {
		c.Run(100 * time.Millisecond) // successor boot times vary by form
	}
	c.Run(*duration / 2)

	for _, m := range up.Migrations {
		status := "ok"
		if m.Aborted {
			status = fmt.Sprintf("ABORTED (%v)", m.Err)
		}
		fmt.Printf("  nsm%-3d → nsm%-3d %-7s vms=%d conns=%d stall=%v bill=%v\n",
			m.From.ID, m.To.ID, status, m.VMs, m.Conns, m.Stall,
			pricer.Price(mgmt.MigrationBill(m)))
	}
	fmt.Printf("  total bill %v (%d migrated, %d skipped)\n", up.Bill, len(up.Migrations), up.Skipped)

	fmt.Println("\npost-migration traffic (bytes out since cutover):")
	for i, m := range w.meters {
		fmt.Printf("  tenant%d: %.1f MB\n", i, float64(m.Snapshot().BytesOut-before[i])/1e6)
	}
	fmt.Printf("\nsimulated %v in %s of wall time\n", c.Now(), "(instantaneous)")
}

// startTraffic wires an echo sink on the server and a bulk sender per
// tenant, returning a pricing meter per tenant.
func startTraffic(c *netkernel.Cluster, server *netkernel.VM, vms []*netkernel.VM) []*pricing.Meter {
	srv := server.Guest
	lfd := srv.Socket(netkernel.Callbacks{})
	srv.SetCallbacks(lfd, netkernel.Callbacks{OnAcceptable: func() {
		for {
			fd, ok := srv.Accept(lfd)
			if !ok {
				return
			}
			buf := make([]byte, 256<<10)
			srv.SetCallbacks(fd, netkernel.Callbacks{OnReadable: func() {
				for {
					n, _ := srv.Recv(fd, buf)
					if n == 0 {
						return
					}
				}
			}})
		}
	}})
	if err := srv.Listen(lfd, 9000, 64); err != nil {
		panic(err)
	}

	var meters []*pricing.Meter
	payload := make([]byte, 64<<10)
	for _, vm := range vms {
		g := vm.Guest
		var fd int32
		pump := func() {
			for g.Send(fd, payload) > 0 {
			}
		}
		fd = g.Socket(netkernel.Callbacks{
			OnEstablished: func(err error) {
				if err == nil {
					pump()
				}
			},
			OnWritable: pump,
		})
		if err := g.Connect(fd, server.IP, 9000); err != nil {
			panic(err)
		}

		// Sample through vm.NSM live rather than a captured pointer, so
		// the meters keep working across a live migration.
		vm := vm
		svc := vm.Service
		nsm := vm.NSM
		m := pricing.NewMeter(c.Clock(), nsm.Form.String(), nsm.CPU.Cores(), nsm.Profile.MemoryMB,
			2e9,
			func() time.Duration { return vm.NSM.CPU.TotalBusy() },
			func() (uint64, uint64) { st := svc.Stats(); return st.DataIn, st.DataOut },
			func() int { return vm.NSM.Stack.ConnCount() },
		)
		m.StartSampling(100 * time.Millisecond)
		meters = append(meters, m)
	}
	return meters
}
