// Command nkctl boots a demonstration NetKernel cloud and reports on
// it like an operator console: inventory, live traffic, the pingmesh
// health matrix, per-tenant SLA compliance, and the §5 pricing models
// applied to metered usage.
//
// Usage:
//
//	nkctl [-tenants N] [-duration D]
package main

import (
	"flag"
	"fmt"
	"time"

	"netkernel"
	"netkernel/internal/mgmt"
	"netkernel/internal/pricing"
)

var (
	tenants  = flag.Int("tenants", 3, "tenant VMs to provision")
	duration = flag.Duration("duration", 2*time.Second, "simulated runtime")
)

func main() {
	flag.Parse()

	fmt.Println("nkctl: booting a two-host NetKernel cloud")
	c := netkernel.NewCluster(netkernel.ClusterConfig{Seed: 42, PerPacketCost: 470 * time.Nanosecond})
	h1 := c.AddHost("host1")
	h2 := c.AddHost("host2")
	c.ConnectHosts(h1, h2, netkernel.Testbed40G())

	// A server VM on host2 for the tenants to talk to.
	server, err := h2.CreateVM(netkernel.VMConfig{
		Name: "server", IP: netkernel.IP("10.0.2.1"), Mode: netkernel.ModeNetKernel,
		NSM: netkernel.NSMSpec{Form: netkernel.FormModule, CC: "cubic"},
	})
	if err != nil {
		panic(err)
	}

	// Tenants on host1, multiplexed onto one shared CUBIC NSM with
	// per-tenant rate SLAs.
	ccs := []string{"cubic", "bbr", "dctcp", "reno", "ctcp"}
	var vms []*netkernel.VM
	var shared *netkernel.NSM
	for i := 0; i < *tenants; i++ {
		spec := netkernel.NSMSpec{
			Form:         netkernel.FormContainer,
			CC:           ccs[i%len(ccs)],
			RateLimitBps: float64(2-i%2) * 1e9, // alternate 2 and 1 Gbit/s SLAs
		}
		if shared != nil && i%2 == 1 {
			spec.ShareWith = shared // odd tenants share the first NSM
		}
		// A dedicated NSM carries its own network identity; tenants
		// multiplexed onto a shared NSM share its address.
		ip := netkernel.Addr{10, 0, 1, byte(1 + i)}
		if spec.ShareWith != nil {
			ip = shared.Stack.Interface().IP
		}
		vm, err := h1.CreateVM(netkernel.VMConfig{
			Name: fmt.Sprintf("tenant%d", i), IP: ip,
			Mode: netkernel.ModeNetKernel, NSM: spec,
		})
		if err != nil {
			panic(err)
		}
		if shared == nil {
			shared = vm.NSM
		}
		vms = append(vms, vm)
	}
	c.Run(500 * time.Millisecond) // boots

	fmt.Printf("\ninventory: host1 %d VMs / %d NSMs, host2 %d VMs / %d NSMs\n",
		h1.VMs(), h1.NSMs(), h2.VMs(), h2.NSMs())
	h1.EachNSM(func(n *netkernel.NSM) {
		fmt.Printf("  nsm%-3d form=%-9s cc=%-6s tenants=%d mem=%dMB isolation=%s\n",
			n.ID, n.Form, n.CC, n.Tenants(), n.Profile.MemoryMB, n.Profile.Isolation)
	})

	// Meters, SLAs, and an echo-sink server.
	meters := startTraffic(c, server, vms)

	// Pingmesh across the provider-controlled stacks.
	mesh := mgmt.NewMesh(mgmt.MeshConfig{
		Clock: c.Clock(), Interval: 200 * time.Millisecond, Timeout: 100 * time.Millisecond,
	}, []mgmt.MeshNode{
		{Name: "host1/nsm", Stack: vms[0].NSM.Stack, IP: vms[0].IP},
		{Name: "host2/nsm", Stack: server.NSM.Stack, IP: server.IP},
	})
	mesh.Start()

	c.Run(*duration)
	mesh.Stop()

	fmt.Println("\npingmesh health matrix:")
	for _, r := range mesh.Report() {
		status := "up"
		if r.Down {
			status = "DOWN"
		}
		fmt.Printf("  %-12s → %-12s %-5s probes=%d lost=%d p50=%v p99=%v\n",
			r.From, r.To, status, r.Sent, r.Lost, r.RTTp50, r.RTTp99)
	}

	fmt.Println("\nper-tenant usage and invoices:")
	models := pricing.DefaultModels()
	for i, m := range meters {
		u := m.Snapshot()
		fmt.Printf("  tenant%d: %.1f MB out, %v CPU busy, %d peak conns\n",
			i, float64(u.BytesOut)/1e6, u.CPUBusy.Round(time.Microsecond), u.PeakConns)
		for _, line := range pricing.Invoice(u, models...) {
			fmt.Printf("    %-14s %v\n", line.Model, line.Amount)
		}
	}
	fmt.Printf("\nsimulated %v in %s of wall time\n", c.Now(), "(instantaneous)")
}

// startTraffic wires an echo sink on the server and a bulk sender per
// tenant, returning a pricing meter per tenant.
func startTraffic(c *netkernel.Cluster, server *netkernel.VM, vms []*netkernel.VM) []*pricing.Meter {
	srv := server.Guest
	lfd := srv.Socket(netkernel.Callbacks{})
	srv.SetCallbacks(lfd, netkernel.Callbacks{OnAcceptable: func() {
		for {
			fd, ok := srv.Accept(lfd)
			if !ok {
				return
			}
			buf := make([]byte, 256<<10)
			srv.SetCallbacks(fd, netkernel.Callbacks{OnReadable: func() {
				for {
					n, _ := srv.Recv(fd, buf)
					if n == 0 {
						return
					}
				}
			}})
		}
	}})
	if err := srv.Listen(lfd, 9000, 64); err != nil {
		panic(err)
	}

	var meters []*pricing.Meter
	payload := make([]byte, 64<<10)
	for i, vm := range vms {
		g := vm.Guest
		var fd int32
		pump := func() {
			for g.Send(fd, payload) > 0 {
			}
		}
		fd = g.Socket(netkernel.Callbacks{
			OnEstablished: func(err error) {
				if err == nil {
					pump()
				}
			},
			OnWritable: pump,
		})
		if err := g.Connect(fd, server.IP, 9000); err != nil {
			panic(err)
		}

		svc := vm.Service
		_ = i
		nsm := vm.NSM
		m := pricing.NewMeter(c.Clock(), nsm.Form.String(), nsm.CPU.Cores(), nsm.Profile.MemoryMB,
			2e9,
			func() time.Duration { return nsm.CPU.TotalBusy() },
			func() (uint64, uint64) { st := svc.Stats(); return st.DataIn, st.DataOut },
			func() int { return nsm.Stack.ConnCount() },
		)
		m.StartSampling(100 * time.Millisecond)
		meters = append(meters, m)
	}
	return meters
}
