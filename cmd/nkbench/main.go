// Command nkbench regenerates every table and figure of "Network Stack
// as a Service in the Cloud" (HotNets 2017) from the NetKernel
// reproduction, printing rows in the paper's format alongside the
// published values.
//
// Usage:
//
//	nkbench [-quick] [-seed N] [fig4|table1|micro|fig5|ablations|all]
//
// Wall-clock cost: table1 and micro are seconds; fig5 and the
// ablations are tens of seconds; fig4 simulates a 40 GbE fabric
// packet by packet and takes a few minutes. EXPERIMENTS.md records a
// reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"netkernel/internal/experiments"
)

var (
	quick = flag.Bool("quick", false, "shorter measurement windows (less precise)")
	seed  = flag.Uint64("seed", 0, "override the deterministic seed")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nkbench [-quick] [-seed N] [fig4|table1|micro|fig5|ablations|all]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}
	run := func(name string, fn func()) {
		if what == "all" || what == name {
			start := time.Now()
			fn()
			fmt.Printf("  [%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	run("table1", table1)
	run("micro", micro)
	run("rpc", rpc)
	run("fig4", fig4)
	run("fig5", fig5)
	run("ablations", ablations)
	switch what {
	case "all", "table1", "micro", "rpc", "fig4", "fig5", "ablations":
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func header(title string) {
	fmt.Printf("=== %s ===\n", title)
}

func table1() {
	header("Table 1: Memory copying latency in NetKernel")
	paper := map[int]string{64: "8ns", 512: "64ns", 1 << 10: "117ns", 2 << 10: "214ns", 4 << 10: "425ns", 8 << 10: "809ns"}
	iters := 200000
	if *quick {
		iters = 20000
	}
	rows := experiments.RunTable1(iters)
	fmt.Printf("%-12s %-12s %-12s\n", "Chunk Size", "Measured", "Paper (Xeon E5-2618LV3)")
	for _, r := range rows {
		fmt.Printf("%-12s %-12v %-12s\n", byteSize(r.ChunkBytes), r.Latency, paper[r.ChunkBytes])
	}
}

func micro() {
	header("§4.2 microbenchmarks")
	iters := 1 << 20
	dur := 500 * time.Millisecond
	if *quick {
		iters = 1 << 17
		dur = 100 * time.Millisecond
	}
	nqe := experiments.NqeCopyCost(iters)
	fmt.Printf("nqe copy via CoreEngine: %v per event (paper: ~12ns)\n", nqe)
	rows := experiments.RunShmChannel([]int{64, 512, 1 << 10, 2 << 10, 4 << 10, 8 << 10}, dur)
	fmt.Printf("GuestLib↔ServiceLib channel, one core (paper: ~64Gbps @64B, ~81Gbps @8KB):\n")
	for _, r := range rows {
		fmt.Printf("  %-8s %8.2f Gbit/s\n", byteSize(r.ChunkBytes), r.BitsPerSec/1e9)
	}

	cb := experiments.CopyBudgetConfig{Seed: *seed}
	if *quick {
		cb.Warmup = 100 * time.Millisecond
		cb.Window = 100 * time.Millisecond
	}
	res := experiments.RunCopyBudget(cb)
	fmt.Printf("streaming-echo copy budget (DESIGN.md §8, budget ≤2 copies/byte per direction):\n")
	fmt.Printf("  %-8s %8.2f Gbit/s\n", "goodput", res.GoodputBps/1e9)
	fmt.Printf("  %-8s %8.3f copies/B  (guest %d + service %d + tcp %d copied of %d payload B)\n",
		"send", res.TxCopiesPerByte,
		res.Report.GuestTxCopied, res.Report.ServiceTxCopied, res.Report.TCPTxCopied, res.Report.PayloadTx)
	fmt.Printf("  %-8s %8.3f copies/B  (guest %d + service %d + tcp %d copied of %d payload B)\n",
		"recv", res.RxCopiesPerByte,
		res.Report.GuestRxCopied, res.Report.ServiceRxCopied, res.Report.TCPRxCopied, res.Report.PayloadRx)

	// The same run's client-host registry, excerpted (nkctl stats
	// renders the full set for the demo cloud).
	fmt.Printf("unified registry excerpt (client host):\n")
	excerpt := res.Snapshot.Filter("vm1.guest.", "engine.", "nsm1.stack.tcp")
	for _, line := range strings.Split(strings.TrimRight(excerpt.String(), "\n"), "\n") {
		fmt.Println("  " + line)
	}
}

func rpc() {
	header("Message-rate fast path (DESIGN.md §11, BENCH_rpc.json)")
	cfg := experiments.RPCConfig{Seed: *seed}
	if *quick {
		cfg.Conns = 8
		cfg.Warmup = 5 * time.Millisecond
		cfg.Window = 10 * time.Millisecond
		cfg.SparseConns = 500
		cfg.Bursts = 40
		cfg.ChurnWindow = 5 * time.Millisecond
	}
	res := experiments.RunRPC(cfg)
	fmt.Printf("echo:   %d conns × %dB closed loop: %.0f RPS (%d round trips)\n",
		res.Conns, res.MsgBytes, res.EchoRPS, res.RoundTrips)
	fmt.Printf("sparse: %d conns, poller %d wakeups for %d events vs %d per-event callbacks (%.2fx amortization)\n",
		res.SparseConns, res.PollerWakeups, res.PollerEvents, res.CallbackWakeups, res.AmortizationRatio)
	fmt.Printf("        wakeup latency poller=%v callback=%v\n", res.PollerLatency, res.CallbackLatency)
	fmt.Printf("churn:  %.0f connect→close cycles/s (%d cycles)\n", res.ChurnPerSec, res.ChurnCycles)
}

func fig4() {
	header("Figure 4: Throughput of TCP Cubic and NetKernel TCP Cubic NSM (40GbE)")
	cfg := experiments.Figure4Config{Seed: *seed}
	if *quick {
		cfg.Warmup = 100 * time.Millisecond
		cfg.Window = 100 * time.Millisecond
	}
	rows := experiments.RunFigure4(cfg)
	fmt.Printf("%-8s %-16s %-16s %-10s\n", "Flows", "Linux (CUBIC)", "CUBIC NSM", "Line rate")
	for _, r := range rows {
		fmt.Printf("%-8d %8.1f Gbit/s  %8.1f Gbit/s  %6.1f Gbit/s\n",
			r.Flows, r.NativeBps/1e9, r.NSMBps/1e9, r.LineRate/1e9)
	}
	fmt.Println("paper: both reach line rate (~37 Gbit/s) at ≥2 flows; single flow core-limited")
}

func fig5() {
	header("Figure 5: A Windows VM utilizes BBR by NetKernel (12 Mbit/s, 350 ms WAN)")
	paper := map[string]float64{"BBR NSM": 11.12, "Linux BBR": 11.14, "Windows CTCP": 8.60, "Linux Cubic": 2.61}
	cfg := experiments.Figure5Config{Seed: *seed, Duration: 30 * time.Second}
	if *quick {
		cfg.Duration = 10 * time.Second
	}
	rows := experiments.RunFigure5(cfg)
	fmt.Printf("%-16s %-14s %-14s\n", "Scenario", "Measured", "Paper")
	for _, r := range rows {
		fmt.Printf("%-16s %7.2f Mbit/s %7.2f Mbit/s\n", r.Scenario, r.Mbps, paper[r.Scenario])
	}
}

func ablations() {
	header("Ablation: notification modes (§5 resource efficiency)")
	for _, r := range experiments.RunNotifyAblation() {
		fmt.Printf("%-16s connect=%-12v throughput=%5.1f Gbit/s  engine: %s\n",
			r.Mode, r.ConnectRTT, r.ThroughputBps/1e9, r.EngineCPU)
	}
	fmt.Println()

	header("Ablation: priority queues (§3.2 head-of-line blocking)")
	for _, r := range experiments.RunPriorityAblation() {
		fmt.Printf("priority=%-6v connect-under-load=%-14v throughput=%5.1f Gbit/s\n",
			r.Priority, r.ConnectLatency, r.ThroughputBps/1e9)
	}
	fmt.Println()

	header("Ablation: NSM form (§5)")
	for _, r := range experiments.RunFormAblation() {
		fmt.Printf("%-10s boot=%-8v connect=%-12v throughput=%5.1f Gbit/s mem=%4d MB  isolation: %s\n",
			r.Form, r.BootTime, r.ConnectRTT, r.ThroughputBps/1e9, r.MemoryMB, r.Isolation)
	}
	fmt.Println()

	header("Ablation: multiplexing and QoS (§2.1, §5)")
	for _, r := range experiments.RunMuxAblation() {
		fmt.Printf("%-12s nsms=%d mem=%4d MB aggregate=%5.1f Gbit/s per-tenant=", r.Strategy, r.NSMs, r.MemoryMB, r.AggregateBps/1e9)
		for i, bps := range r.PerTenantBps {
			if i > 0 {
				fmt.Print("/")
			}
			fmt.Printf("%.1fG", bps/1e9)
		}
		fmt.Println()
	}
	fmt.Println()

	header("Ablation: scale-out replicas (§2.1)")
	for _, r := range experiments.RunScaleOutAblation() {
		fmt.Printf("replicas=%d aggregate=%5.1f Gbit/s (single-core NSM cap %.1f Gbit/s)\n",
			r.Replicas, r.AggregateBps/1e9, r.CoreCapBps/1e9)
	}
	fmt.Println()

	header("Ablation: synchronous vs asynchronous operations (§3.2)")
	for _, r := range experiments.RunSyncAblation() {
		fmt.Printf("%-24s throughput=%5.2f Gbit/s ops/s=%.0f\n", r.Mode, r.ThroughputBps/1e9, r.OpsPerSec)
	}
}

func byteSize(n int) string {
	if n >= 1<<10 {
		return fmt.Sprintf("%dKB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
