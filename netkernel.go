// Package netkernel is a library-scale reproduction of "Network Stack
// as a Service in the Cloud" (Niu et al., HotNets 2017): a framework
// that decouples the tenant network stack from the guest OS and runs
// it provider-side in Network Stack Modules (NSMs), connected to the
// guest by shared-memory queues managed by a CoreEngine.
//
// The package is a facade over the full system in internal/: a
// deterministic discrete-event substrate, a from-scratch TCP/IP stack
// with pluggable congestion control (Reno, CUBIC, BBR, C-TCP, DCTCP),
// simulated hosts with NICs/SR-IOV/virtual switches, the NetKernel
// datapath (GuestLib, nqe queues, huge pages, CoreEngine, ServiceLib),
// and the management plane (QoS scheduling, pingmesh failure
// detection, usage metering and pricing).
//
// A minimal session:
//
//	c := netkernel.NewCluster(netkernel.ClusterConfig{})
//	h1 := c.AddHost("host1")
//	h2 := c.AddHost("host2")
//	c.ConnectHosts(h1, h2, netkernel.Testbed40G())
//
//	server, _ := h2.CreateVM(netkernel.VMConfig{
//		Name: "server", IP: netkernel.IP("10.0.2.1"), Mode: netkernel.ModeNetKernel,
//		NSM: netkernel.NSMSpec{Form: netkernel.FormVM, CC: "bbr"},
//	})
//	client, _ := h1.CreateVM(netkernel.VMConfig{
//		Name: "client", IP: netkernel.IP("10.0.1.1"), Mode: netkernel.ModeNetKernel,
//		NSM: netkernel.NSMSpec{Form: netkernel.FormVM, CC: "cubic"},
//	})
//
//	// … use server.Guest / client.Guest (the socket API) and c.Run().
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory.
package netkernel

import (
	"time"

	"netkernel/internal/guestlib"
	"netkernel/internal/hypervisor"
	"netkernel/internal/netsim"
	"netkernel/internal/proto/ethernet"
	"netkernel/internal/proto/ipv4"
	"netkernel/internal/proto/tcp"
	"netkernel/internal/sim"
	"netkernel/internal/stack"
	"netkernel/internal/tcpcc"
	"netkernel/internal/vswitch"
)

// Re-exported types: the public surface keeps the internal package
// structure invisible while exposing the domain vocabulary.
type (
	// Host is one physical machine: NIC, overlay switch, CPU cores,
	// CoreEngine, VMs and NSMs.
	Host = hypervisor.Host
	// VM is a tenant virtual machine (legacy or NetKernel mode).
	VM = hypervisor.VM
	// VMConfig requests a tenant VM.
	VMConfig = hypervisor.VMConfig
	// NSM is a Network Stack Module instance.
	NSM = hypervisor.NSM
	// NSMSpec requests an NSM (form, congestion control, cores, SR-IOV,
	// sharing, rate SLA).
	NSMSpec = hypervisor.NSMSpec
	// NSMForm selects the module realization (VM, unikernel, container,
	// hypervisor module).
	NSMForm = hypervisor.NSMForm
	// VMMode selects legacy (stack in guest) or NetKernel (stack as a
	// service).
	VMMode = hypervisor.VMMode
	// HostConfig parameterizes a host.
	HostConfig = hypervisor.HostConfig
	// GuestLib is the in-guest socket surface of a NetKernel VM.
	GuestLib = guestlib.GuestLib
	// Callbacks are the per-socket event hooks of the guest API.
	Callbacks = guestlib.Callbacks
	// GuestProfile names the guest OS flavor (its legacy stack's
	// default congestion control).
	GuestProfile = guestlib.GuestProfile
	// Conn is a TCP connection of a legacy in-guest stack.
	Conn = tcp.Conn
	// Listener is a legacy-stack TCP listener.
	Listener = tcp.Listener
	// SocketOptions shape legacy-stack sockets (congestion control,
	// buffers, callbacks).
	SocketOptions = stack.SocketOptions
	// Stack is a host network stack (legacy guests and NSMs run one).
	Stack = stack.Stack
	// AddrPort is an IPv4 endpoint.
	AddrPort = tcp.AddrPort
	// Addr is an IPv4 address.
	Addr = ipv4.Addr
	// LinkConfig shapes a physical link (rate, delay, loss, queue).
	LinkConfig = netsim.LinkConfig
	// Link is one unidirectional wire.
	Link = netsim.Link
)

// Re-exported constants.
const (
	ModeLegacy    = hypervisor.ModeLegacy
	ModeNetKernel = hypervisor.ModeNetKernel

	FormVM        = hypervisor.FormVM
	FormUnikernel = hypervisor.FormUnikernel
	FormContainer = hypervisor.FormContainer
	FormModule    = hypervisor.FormModule

	ProfileLinux   = guestlib.ProfileLinux
	ProfileWindows = guestlib.ProfileWindows
	ProfileFreeBSD = guestlib.ProfileFreeBSD

	// Link capacities.
	Kbps = netsim.Kbps
	Mbps = netsim.Mbps
	Gbps = netsim.Gbps
)

// IP parses dotted-quad notation, panicking on malformed input (it is
// meant for literals).
func IP(s string) Addr { return ipv4.MustParseAddr(s) }

// Testbed40G is the paper's two-server 40 GbE fabric (§4.1).
func Testbed40G() LinkConfig { return netsim.Testbed40G() }

// WANPath is the §4.3 Beijing↔California path: 12 Mbit/s, 350 ms RTT,
// with the given random loss probability.
func WANPath(lossProb float64) LinkConfig { return netsim.WANPath(lossProb) }

// CongestionControls lists the available stack flavors an NSM can host.
func CongestionControls() []string { return tcpcc.Names() }

// MarkCE is a LinkConfig.Marker that sets the ECN congestion-
// experienced codepoint on an Ethernet frame's IPv4 packet (a no-op
// for non-ECT traffic): the switch-side half of DCTCP.
func MarkCE(frame []byte) {
	if len(frame) > ethernet.HeaderLen {
		ipv4.SetCEInPlace(frame[ethernet.HeaderLen:])
	}
}

// ClusterConfig shapes a cluster.
type ClusterConfig struct {
	// Seed drives all deterministic randomness (default 1).
	Seed uint64
	// Cores per host (default 8).
	Cores int
	// PerPacketCost models per-core packet processing (0 = free).
	PerPacketCost time.Duration
	// Host, when set, adjusts each host's config before construction
	// (buffers, engine latencies, switch mode, …).
	Host func(cfg *HostConfig)
}

// Cluster is a deterministic simulated deployment: hosts, wires, and a
// virtual clock.
type Cluster struct {
	cfg    ClusterConfig
	loop   *sim.Loop
	hosts  []*Host
	nextID uint8
}

// NewCluster builds an empty cluster at virtual time zero.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Cluster{cfg: cfg, loop: sim.NewLoop()}
}

// AddHost provisions a host.
func (c *Cluster) AddHost(name string) *Host {
	c.nextID++
	hc := HostConfig{
		Name:            name,
		Clock:           c.loop,
		RNG:             sim.NewRNG(c.cfg.Seed + uint64(c.nextID)),
		HostID:          c.nextID,
		Cores:           c.cfg.Cores,
		PerPacketCost:   c.cfg.PerPacketCost,
		RoundRobinCores: true,
		SwitchMode:      vswitch.Software,
	}
	if c.cfg.Host != nil {
		c.cfg.Host(&hc)
	}
	h := hypervisor.NewHost(hc)
	c.hosts = append(c.hosts, h)
	return h
}

// ConnectHosts joins two hosts' physical NICs with a duplex link and
// returns both directions (a→b, b→a).
func (c *Cluster) ConnectHosts(a, b *Host, link LinkConfig) (ab, ba *Link) {
	rng := sim.NewRNG(c.cfg.Seed + 0x1147)
	ab, ba = netsim.Duplex(c.loop, rng, link, a.NIC, b.NIC)
	a.NIC.AttachWire(ab)
	b.NIC.AttachWire(ba)
	return ab, ba
}

// Run advances virtual time by d, executing everything scheduled
// within it.
func (c *Cluster) Run(d time.Duration) { c.loop.RunFor(d) }

// RunUntilIdle executes every pending event (useful after shutdowns).
func (c *Cluster) RunUntilIdle() { c.loop.Run() }

// Now returns the current virtual time since cluster creation.
func (c *Cluster) Now() time.Duration { return c.loop.Now().Duration() }

// Clock exposes the cluster's clock for advanced wiring (management
// probes, meters, custom timers).
func (c *Cluster) Clock() sim.Clock { return c.loop }

// Hosts returns the provisioned hosts in creation order.
func (c *Cluster) Hosts() []*Host { return c.hosts }
