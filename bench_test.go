package netkernel

// Benchmarks regenerating the paper's evaluation, one target per table
// and figure (DESIGN.md §4 maps them). The virtual-time experiments
// report their headline numbers as custom metrics (Gbit/s, Mbit/s);
// the wall-clock microbenchmarks report real ns/op on this host.
//
// Full-size paper-format runs: cmd/nkbench. Reference results:
// EXPERIMENTS.md.

import (
	"strconv"
	"testing"
	"time"

	"netkernel/internal/experiments"
	"netkernel/internal/hypervisor"
	"netkernel/internal/nkchan"
	"netkernel/internal/nkqueue"
	"netkernel/internal/nqe"
	"netkernel/internal/shm"
	"netkernel/internal/sim"
)

// --- Table 1: memory-copy latency (wall clock) ---

func benchCopy(b *testing.B, size int) {
	pages, err := shm.NewHugePages(1, 8<<10)
	if err != nil {
		b.Fatal(err)
	}
	var chunks []shm.Chunk
	for i := 0; i < 64; i++ {
		c, ok := pages.Alloc()
		if !ok {
			break
		}
		chunks = append(chunks, c)
	}
	src := make([]byte, size)
	dst := make([]byte, size)
	b.SetBytes(int64(2 * size)) // one write + one read per op
	b.ResetTimer()
	idx := uint64(12345)
	for i := 0; i < b.N; i++ {
		idx = idx*6364136223846793005 + 1442695040888963407
		c := chunks[idx%uint64(len(chunks))]
		pages.Write(c, src)
		pages.Read(c, dst, size)
	}
}

func BenchmarkTable1Copy64B(b *testing.B)  { benchCopy(b, 64) }
func BenchmarkTable1Copy512B(b *testing.B) { benchCopy(b, 512) }
func BenchmarkTable1Copy1KB(b *testing.B)  { benchCopy(b, 1<<10) }
func BenchmarkTable1Copy2KB(b *testing.B)  { benchCopy(b, 2<<10) }
func BenchmarkTable1Copy4KB(b *testing.B)  { benchCopy(b, 4<<10) }
func BenchmarkTable1Copy8KB(b *testing.B)  { benchCopy(b, 8<<10) }

// --- §4.2: nqe copy cost (paper: ~12 ns per event) ---

func BenchmarkNqeCopy(b *testing.B) {
	src, _ := nkqueue.NewQueue(nkqueue.Config{Slots: 2})
	dst, _ := nkqueue.NewQueue(nkqueue.Config{Slots: 2})
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 3, DataLen: 1448}
	var out nqe.Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Push(&e)
		nkqueue.Move(dst, src) // the measured CoreEngine copy
		dst.Pop(&out)
	}
}

// BenchmarkMoveBatch is the batched counterpart of BenchmarkNqeCopy:
// one op moves a 64-element batch end to end (PushBatch → MoveBatch →
// PopBatch), so ns/elem = ns/op ÷ 64. The batch path amortizes the
// atomic head/tail traffic and the doorbell over the whole span (§3.2
// batched interrupts) and must beat the per-element path by ≥2×.
func BenchmarkMoveBatch(b *testing.B) {
	const batch = 64
	src, _ := nkqueue.NewQueue(nkqueue.Config{Slots: 2 * batch})
	dst, _ := nkqueue.NewQueue(nkqueue.Config{Slots: 2 * batch})
	es := make([]nqe.Element, batch)
	for i := range es {
		es[i] = nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 3, DataLen: 1448}
	}
	out := make([]nqe.Element, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.PushBatch(es)
		nkqueue.MoveBatch(dst, src, batch) // the measured CoreEngine copy
		dst.PopBatch(out)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/elem")
}

// --- §4.2: GuestLib↔ServiceLib channel throughput per core ---

func benchShmChannel(b *testing.B, size int) {
	pages, _ := shm.NewHugePages(4, 8<<10)
	ring, _ := shm.NewRing(1024, nqe.Size)
	src := make([]byte, size)
	dst := make([]byte, size)
	slot := make([]byte, nqe.Size)
	var e, out nqe.Element
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk, ok := pages.Alloc()
		if !ok {
			b.Fatal("pages exhausted")
		}
		pages.Write(chunk, src)
		e = nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, DataOff: chunk.Offset, DataLen: uint32(size)}
		e.Encode(slot)
		ring.Enqueue(slot)
		ring.Dequeue(slot)
		out.Decode(slot)
		c := shm.Chunk{Offset: out.DataOff}
		pages.Read(c, dst, int(out.DataLen))
		pages.Free(c)
	}
}

func BenchmarkShmChannel64B(b *testing.B) { benchShmChannel(b, 64) }
func BenchmarkShmChannel8KB(b *testing.B) { benchShmChannel(b, 8<<10) }

// benchEnginePump drives 64-element bursts of OpSend jobs through a
// CoreEngine (validate + fd→cID translate + copy to the NSM ring) at
// the given pump batch size. batch=1 approximates the old per-element
// pump; batch=64 is the span fast path.
func benchEnginePump(b *testing.B, batch int) {
	const burst = 64
	loop := sim.NewLoop()
	mk := func() nkqueue.Q {
		q, err := nkqueue.NewQueue(nkqueue.Config{Slots: 4 * burst})
		if err != nil {
			b.Fatal(err)
		}
		return q
	}
	ch := &nkchan.Pair{
		VMJob: mk(), VMCompletion: mk(), VMReceive: mk(),
		NSMJob: mk(), NSMCompletion: mk(), NSMReceive: mk(),
	}
	ce := hypervisor.NewCoreEngine(loop, hypervisor.EngineConfig{Batch: batch})
	ce.Attach(ch, 1, 2, 0, 0, 0)

	// Install the fd 5 ↔ cID 77 mapping with an OpSocket round trip.
	sock := nqe.Element{Op: nqe.OpSocket, Source: nqe.FromVM, VMID: 1, FD: 5, Seq: 1}
	ch.VMJob.Push(&sock)
	ch.KickEngineVM(0)
	loop.RunFor(10 * time.Millisecond)
	var got nqe.Element
	if !ch.NSMJob.Pop(&got) {
		b.Fatal("socket job did not cross the engine")
	}
	comp := nqe.Element{Op: nqe.OpSocket, Source: nqe.FromNSM, CID: 77, Seq: got.Seq}
	ch.NSMCompletion.Push(&comp)
	ch.KickEngineNSM(0)
	loop.RunFor(10 * time.Millisecond)
	if !ch.VMCompletion.Pop(&got) || got.FD != 5 {
		b.Fatal("socket completion did not come back")
	}

	es := make([]nqe.Element, burst)
	for i := range es {
		es[i] = nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 5, DataLen: 1448}
	}
	out := make([]nqe.Element, burst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ch.VMJob.PushBatch(es) != burst {
			b.Fatal("job ring full")
		}
		ch.KickEngineVM(0)
		loop.RunFor(10 * time.Millisecond)
		drained := 0
		for drained < burst {
			n := ch.NSMJob.PopBatch(out)
			if n == 0 {
				b.Fatal("engine did not move the burst")
			}
			drained += n
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*burst), "ns/elem")
}

func BenchmarkEnginePump(b *testing.B) {
	b.Run("batch=1", func(b *testing.B) { benchEnginePump(b, 1) })
	b.Run("batch=64", func(b *testing.B) { benchEnginePump(b, 64) })
}

// --- Figure 4: CUBIC native vs CUBIC NSM on 40 GbE (virtual time) ---

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFigure4(experiments.Figure4Config{
			Warmup: 200 * time.Millisecond,
			Window: 100 * time.Millisecond,
		})
		for _, r := range rows {
			b.ReportMetric(r.NativeBps/1e9, "native-"+itoa(r.Flows)+"flow-Gbps")
			b.ReportMetric(r.NSMBps/1e9, "nsm-"+itoa(r.Flows)+"flow-Gbps")
		}
	}
}

// --- DESIGN.md §8: streaming-echo copy budget (virtual time) ---

// BenchmarkEchoThroughput runs the bidirectional echo between two
// NetKernel VMs and reports goodput plus the per-direction
// copies-per-byte from the layer memcpy counters. bytes/op counts the
// payload the client got back per run; BENCH_echo.json records the
// trajectory across PRs.
func BenchmarkEchoThroughput(b *testing.B) {
	var echoed uint64
	for i := 0; i < b.N; i++ {
		res := experiments.RunCopyBudget(experiments.CopyBudgetConfig{
			Warmup: 100 * time.Millisecond,
			Window: 100 * time.Millisecond,
		})
		echoed += res.BytesEchoed
		b.ReportMetric(res.GoodputBps/1e9, "echo-Gbps")
		b.ReportMetric(res.TxCopiesPerByte, "tx-copies/B")
		b.ReportMetric(res.RxCopiesPerByte, "rx-copies/B")
	}
	b.SetBytes(int64(echoed / uint64(b.N)))
}

// BenchmarkScaleout runs the many-VM/many-flow scale-out measurement
// (DESIGN.md §10) at shards=1 and shards=4 and reports both aggregate
// goodputs plus the ratio; BENCH_scaleout.json records the trajectory
// and TestScaleoutGate enforces it in CI.
func BenchmarkScaleout(b *testing.B) {
	var moved uint64
	for i := 0; i < b.N; i++ {
		one := experiments.RunScaleout(experiments.ScaleoutConfig{Shards: 1})
		four := experiments.RunScaleout(experiments.ScaleoutConfig{Shards: 4})
		moved += uint64((one.AggregateBps + four.AggregateBps) / 8 * 0.05)
		b.ReportMetric(one.AggregateBps/1e9, "shards1-Gbps")
		b.ReportMetric(four.AggregateBps/1e9, "shards4-Gbps")
		b.ReportMetric(four.AggregateBps/one.AggregateBps, "scaleout-x")
	}
	b.SetBytes(int64(moved / uint64(b.N)))
}

// BenchmarkRPC runs the message-rate measurement (DESIGN.md §11):
// small-message echo RPS, sparse-activity wakeup amortization
// (poller vs per-event callbacks), and connect→close churn rate.
// BENCH_rpc.json records the trajectory and TestRPCGate enforces it
// in CI.
func BenchmarkRPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunRPC(experiments.RPCConfig{})
		b.ReportMetric(res.EchoRPS/1e3, "echo-kRPS")
		b.ReportMetric(res.AmortizationRatio, "wakeup-amortization-x")
		b.ReportMetric(float64(res.PollerLatency.Nanoseconds())/1e3, "sparse-latency-us")
		b.ReportMetric(res.ChurnPerSec/1e3, "churn-kconn/s")
	}
}

// --- Figure 5: the WAN flexibility experiment (virtual time) ---

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFigure5(experiments.Figure5Config{})
		for _, r := range rows {
			b.ReportMetric(r.Mbps, metricName(r.Scenario)+"-Mbps")
		}
	}
}

// --- §5 ablations ---

func BenchmarkNotifyModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunNotifyAblation()
		for _, r := range rows {
			b.ReportMetric(float64(r.ConnectRTT.Nanoseconds())/1e3, r.Mode+"-connect-us")
		}
	}
}

func BenchmarkPriorityQueues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunPriorityAblation()
		for _, r := range rows {
			name := "single-queue"
			if r.Priority {
				name = "priority-queues"
			}
			b.ReportMetric(float64(r.ConnectLatency.Microseconds()), name+"-connect-us")
		}
	}
}

func BenchmarkNSMForms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFormAblation()
		for _, r := range rows {
			b.ReportMetric(float64(r.ConnectRTT.Microseconds()), r.Form.String()+"-connect-us")
		}
	}
}

func BenchmarkMultiplexing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunMuxAblation()
		for _, r := range rows {
			b.ReportMetric(r.AggregateBps/1e9, metricName(r.Strategy)+"-aggregate-Gbps")
			b.ReportMetric(float64(r.MemoryMB), metricName(r.Strategy)+"-MB")
		}
	}
}

func BenchmarkScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunScaleOutAblation()
		for _, r := range rows {
			b.ReportMetric(r.AggregateBps/1e9, itoa(r.Replicas)+"replica-Gbps")
		}
	}
}

func BenchmarkSyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunSyncAblation()
		for _, r := range rows {
			name := "async"
			if r.Mode[:4] == "sync" {
				name = "sync"
			}
			b.ReportMetric(r.ThroughputBps/1e9, name+"-Gbps")
		}
	}
}

// --- helpers ---

func itoa(n int) string { return strconv.Itoa(n) }

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ', r == '+':
			out = append(out, '-')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
