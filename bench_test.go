package netkernel

// Benchmarks regenerating the paper's evaluation, one target per table
// and figure (DESIGN.md §4 maps them). The virtual-time experiments
// report their headline numbers as custom metrics (Gbit/s, Mbit/s);
// the wall-clock microbenchmarks report real ns/op on this host.
//
// Full-size paper-format runs: cmd/nkbench. Reference results:
// EXPERIMENTS.md.

import (
	"testing"
	"time"

	"netkernel/internal/experiments"
	"netkernel/internal/nkqueue"
	"netkernel/internal/nqe"
	"netkernel/internal/shm"
)

// --- Table 1: memory-copy latency (wall clock) ---

func benchCopy(b *testing.B, size int) {
	pages, err := shm.NewHugePages(1, 8<<10)
	if err != nil {
		b.Fatal(err)
	}
	var chunks []shm.Chunk
	for i := 0; i < 64; i++ {
		c, ok := pages.Alloc()
		if !ok {
			break
		}
		chunks = append(chunks, c)
	}
	src := make([]byte, size)
	dst := make([]byte, size)
	b.SetBytes(int64(2 * size)) // one write + one read per op
	b.ResetTimer()
	idx := uint64(12345)
	for i := 0; i < b.N; i++ {
		idx = idx*6364136223846793005 + 1442695040888963407
		c := chunks[idx%uint64(len(chunks))]
		pages.Write(c, src)
		pages.Read(c, dst, size)
	}
}

func BenchmarkTable1Copy64B(b *testing.B)  { benchCopy(b, 64) }
func BenchmarkTable1Copy512B(b *testing.B) { benchCopy(b, 512) }
func BenchmarkTable1Copy1KB(b *testing.B)  { benchCopy(b, 1<<10) }
func BenchmarkTable1Copy2KB(b *testing.B)  { benchCopy(b, 2<<10) }
func BenchmarkTable1Copy4KB(b *testing.B)  { benchCopy(b, 4<<10) }
func BenchmarkTable1Copy8KB(b *testing.B)  { benchCopy(b, 8<<10) }

// --- §4.2: nqe copy cost (paper: ~12 ns per event) ---

func BenchmarkNqeCopy(b *testing.B) {
	src, _ := nkqueue.NewQueue(nkqueue.Config{Slots: 2})
	dst, _ := nkqueue.NewQueue(nkqueue.Config{Slots: 2})
	e := nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, VMID: 1, FD: 3, DataLen: 1448}
	var out nqe.Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Push(&e)
		nkqueue.Move(dst, src) // the measured CoreEngine copy
		dst.Pop(&out)
	}
}

// --- §4.2: GuestLib↔ServiceLib channel throughput per core ---

func benchShmChannel(b *testing.B, size int) {
	pages, _ := shm.NewHugePages(4, 8<<10)
	ring, _ := shm.NewRing(1024, nqe.Size)
	src := make([]byte, size)
	dst := make([]byte, size)
	slot := make([]byte, nqe.Size)
	var e, out nqe.Element
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunk, ok := pages.Alloc()
		if !ok {
			b.Fatal("pages exhausted")
		}
		pages.Write(chunk, src)
		e = nqe.Element{Op: nqe.OpSend, Source: nqe.FromVM, DataOff: chunk.Offset, DataLen: uint32(size)}
		e.Encode(slot)
		ring.Enqueue(slot)
		ring.Dequeue(slot)
		out.Decode(slot)
		c := shm.Chunk{Offset: out.DataOff}
		pages.Read(c, dst, int(out.DataLen))
		pages.Free(c)
	}
}

func BenchmarkShmChannel64B(b *testing.B) { benchShmChannel(b, 64) }
func BenchmarkShmChannel8KB(b *testing.B) { benchShmChannel(b, 8<<10) }

// --- Figure 4: CUBIC native vs CUBIC NSM on 40 GbE (virtual time) ---

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFigure4(experiments.Figure4Config{
			Warmup: 200 * time.Millisecond,
			Window: 100 * time.Millisecond,
		})
		for _, r := range rows {
			b.ReportMetric(r.NativeBps/1e9, "native-"+itoa(r.Flows)+"flow-Gbps")
			b.ReportMetric(r.NSMBps/1e9, "nsm-"+itoa(r.Flows)+"flow-Gbps")
		}
	}
}

// --- Figure 5: the WAN flexibility experiment (virtual time) ---

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFigure5(experiments.Figure5Config{})
		for _, r := range rows {
			b.ReportMetric(r.Mbps, metricName(r.Scenario)+"-Mbps")
		}
	}
}

// --- §5 ablations ---

func BenchmarkNotifyModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunNotifyAblation()
		for _, r := range rows {
			b.ReportMetric(float64(r.ConnectRTT.Nanoseconds())/1e3, r.Mode+"-connect-us")
		}
	}
}

func BenchmarkPriorityQueues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunPriorityAblation()
		for _, r := range rows {
			name := "single-queue"
			if r.Priority {
				name = "priority-queues"
			}
			b.ReportMetric(float64(r.ConnectLatency.Microseconds()), name+"-connect-us")
		}
	}
}

func BenchmarkNSMForms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFormAblation()
		for _, r := range rows {
			b.ReportMetric(float64(r.ConnectRTT.Microseconds()), r.Form.String()+"-connect-us")
		}
	}
}

func BenchmarkMultiplexing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunMuxAblation()
		for _, r := range rows {
			b.ReportMetric(r.AggregateBps/1e9, metricName(r.Strategy)+"-aggregate-Gbps")
			b.ReportMetric(float64(r.MemoryMB), metricName(r.Strategy)+"-MB")
		}
	}
}

func BenchmarkScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunScaleOutAblation()
		for _, r := range rows {
			b.ReportMetric(r.AggregateBps/1e9, itoa(r.Replicas)+"replica-Gbps")
		}
	}
}

func BenchmarkSyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunSyncAblation()
		for _, r := range rows {
			name := "async"
			if r.Mode[:4] == "sync" {
				name = "sync"
			}
			b.ReportMetric(r.ThroughputBps/1e9, name+"-Gbps")
		}
	}
}

// --- helpers ---

func itoa(n int) string { return string(rune('0' + n)) }

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ', r == '+':
			out = append(out, '-')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
